package main

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestSweepScenario(t *testing.T) {
	out := runOK(t, "-n", "12", "-tokens", "6",
		"-intensities", "0,0.5", "-heuristics", "local,retry-local")
	for _, want := range []string{"intensity", "retry-local", "completed", "inflation"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestCrashSourceScenario(t *testing.T) {
	out := runOK(t, "-scenario", "crash-source", "-n", "12", "-tokens", "36", "-crash-at", "1")
	if !strings.Contains(out, "graceful") {
		t.Errorf("no graceful termination in output:\n%s", out)
	}
	if !strings.Contains(out, "unsatisfiable") {
		t.Errorf("no unsatisfiable-receiver column in output:\n%s", out)
	}
}

func TestCSVOutput(t *testing.T) {
	out := runOK(t, "-n", "12", "-tokens", "6", "-intensities", "0",
		"-heuristics", "local", "-csv")
	if !strings.HasPrefix(out, "intensity,heuristic,") {
		t.Errorf("not CSV:\n%s", out)
	}
}

func TestPartitionScenario(t *testing.T) {
	out := runOK(t, "-scenario", "partition", "-n", "12", "-tokens", "6",
		"-k", "2", "-heal", "0,-1", "-heuristics", "local", "-monitor")
	for _, want := range []string{"liveness", "never", "invariant monitor"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestChurnScenario(t *testing.T) {
	out := runOK(t, "-scenario", "churn", "-n", "12", "-tokens", "6",
		"-churn-rates", "0,0.05", "-rejoin", "0.5", "-heuristics", "local", "-monitor")
	for _, want := range []string{"leave", "departures", "rejoin"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestJournalResumeMatchesCleanRun(t *testing.T) {
	args := []string{"-scenario", "churn", "-n", "12", "-tokens", "6",
		"-churn-rates", "0,0.05,0.1", "-heuristics", "local,bandwidth", "-seed", "5"}
	clean := runOK(t, args...)

	// First pass journals every cell; the "resumed" pass must replay out of
	// the journal to byte-identical output.
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	withJournal := append(args, "-journal", journal)
	if runOK(t, withJournal...) != clean {
		t.Error("journaled run diverged from the plain run")
	}
	if resumed := runOK(t, withJournal...); resumed != clean {
		t.Error("resumed run diverged from the plain run")
	}
}

func TestFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-n", "0"},
		{"-tokens", "-3"},
		{"-crash-at", "-1", "-scenario", "crash-source"},
		{"-intensities", "1.5"},
		{"-intensities", "abc"},
		{"-intensities", ""},
		{"-heuristics", ""},
		{"-heuristics", "nope"},
		{"-scenario", "nope"},
		{"-scenario", "partition", "-k", "1"},
		{"-scenario", "partition", "-heal", ""},
		{"-scenario", "partition", "-heal", "abc"},
		{"-scenario", "churn", "-churn-rates", ""},
		{"-scenario", "churn", "-churn-rates", "1.5"},
		{"-scenario", "churn", "-rejoin", "2"},
	}
	for _, args := range bad {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted invalid flags", args)
		}
	}
}

func TestSpecModeExperimentCSV(t *testing.T) {
	out := runOK(t, "-experiment", "chaos", "-param", "n=12", "-param", "tokens=6",
		"-param", "intensities=0", "-param", "heuristics=local", "-csv")
	if !strings.HasPrefix(out, "intensity,heuristic,") {
		t.Errorf("not CSV:\n%s", out)
	}
}

// TestSpecModeHarnessFlags drives the partition experiment through the
// registry with the shared -monitor flag and expects the invariant-monitor
// note, proving the harness flags merge into spec parameters.
func TestSpecModeHarnessFlags(t *testing.T) {
	out := runOK(t, "-experiment", "partition", "-param", "n=12", "-param", "tokens=6",
		"-param", "heal=0", "-param", "heuristics=local", "-monitor")
	if !strings.Contains(out, "invariant monitor") {
		t.Errorf("-monitor did not reach the partition spec:\n%s", out)
	}
}

// TestSpecModeMatchesScenario runs the same sweep through the classic
// scenario flags and the registry and expects identical tables.
func TestSpecModeMatchesScenario(t *testing.T) {
	classic := runOK(t, "-scenario", "churn", "-n", "12", "-tokens", "6",
		"-churn-rates", "0,0.05", "-heuristics", "local", "-seed", "5")
	spec := runOK(t, "-experiment", "churn", "-param", "n=12", "-param", "tokens=6",
		"-param", "leave=0,0.05", "-param", "heuristics=local", "-seed", "5")
	if classic != spec {
		t.Errorf("scenario and spec modes diverge:\n--- scenario ---\n%s--- spec ---\n%s", classic, spec)
	}
}

func TestDeterministicOutput(t *testing.T) {
	args := []string{"-n", "12", "-tokens", "8", "-intensities", "0.6",
		"-heuristics", "local,random", "-seed", "9"}
	if runOK(t, args...) != runOK(t, args...) {
		t.Error("identical seeds produced different sweeps")
	}
}

// failWriter fails after the first write, modelling a closed pipe.
type failWriter struct{ wrote bool }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.wrote {
		return 0, errors.New("pipe closed")
	}
	w.wrote = true
	return len(p), nil
}

func TestWriteErrorReported(t *testing.T) {
	err := run([]string{"-n", "12", "-tokens", "6", "-intensities", "0", "-heuristics", "local"},
		&failWriter{wrote: true})
	if err == nil || !strings.Contains(err.Error(), "writing table") {
		t.Fatalf("want write error reported, got %v", err)
	}
}
