package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFormats(t *testing.T) {
	for format, want := range map[string]string{
		"dot":   "digraph",
		"arcs":  " ",
		"stats": "strongly-connected=true",
	} {
		var out bytes.Buffer
		if err := run([]string{"-n", "20", "-format", format}, &out); err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
		if !strings.Contains(out.String(), want) {
			t.Errorf("format %s output missing %q:\n%s", format, want, out.String())
		}
	}
}

func TestTransitStub(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-topology", "transit-stub", "-n", "30", "-format", "stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "vertices=") {
		t.Errorf("stats malformed: %s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-topology", "nope"},
		{"-format", "nope"},
		{"-n", "1"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
