// Command ocdgen generates the paper's topologies and dumps them as
// Graphviz DOT, a simple arc list, or summary statistics.
//
//	ocdgen -topology transit-stub -n 50 -format dot > g.dot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ocd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ocdgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ocdgen", flag.ContinueOnError)
	var (
		topo   = fs.String("topology", "random", "topology: random | transit-stub")
		n      = fs.Int("n", 50, "number of vertices")
		seed   = fs.Int64("seed", 1, "random seed")
		format = fs.String("format", "dot", "output: dot | arcs | stats")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *ocd.Graph
	var err error
	switch *topo {
	case "random":
		g, err = ocd.RandomTopology(*n, ocd.DefaultCaps, *seed)
	case "transit-stub":
		g, err = ocd.TransitStubTopology(*n, ocd.DefaultCaps, *seed)
	default:
		return fmt.Errorf("unknown topology %q", *topo)
	}
	if err != nil {
		return err
	}

	switch *format {
	case "dot":
		fmt.Fprint(stdout, g.DOT(*topo))
	case "arcs":
		for _, a := range g.Arcs() {
			fmt.Fprintf(stdout, "%d %d %d\n", a.From, a.To, a.Cap)
		}
	case "stats":
		fmt.Fprintf(stdout, "vertices=%d arcs=%d diameter=%d strongly-connected=%v\n",
			g.N(), g.NumArcs(), g.Diameter(), g.StronglyConnected())
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return nil
}
