package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestFigure1Table(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "min time") || !strings.Contains(s, "min bandwidth") {
		t.Errorf("figure 1 table malformed:\n%s", s)
	}
}

func TestCSVOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "1", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "objective,") {
		t.Errorf("csv malformed:\n%s", out.String())
	}
}

func TestSmallScaleSelected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "small", "-tradeoff", "-bounds"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "hybrid objective") || !strings.Contains(s, "certified optima") {
		t.Errorf("tables missing:\n%s", s)
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "nope", "-fig", "1"}, &out); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run(nil, &out); err == nil {
		t.Error("no selection accepted")
	}
}

func TestParams(t *testing.T) {
	full, err := params("full")
	if err != nil {
		t.Fatal(err)
	}
	if full.sizes[len(full.sizes)-1] != 1000 || full.fileTokens != 512 || full.repeats != 3 {
		t.Errorf("full params drifted from the paper: %+v", full)
	}
	if _, err := params("tiny"); err == nil {
		t.Error("unknown scale accepted")
	}
}

// failWriter always fails, modelling a closed pipe.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("pipe closed") }

func TestWriteErrorReported(t *testing.T) {
	err := run([]string{"-fig", "1"}, failWriter{})
	if err == nil || !strings.Contains(err.Error(), "writing table") {
		t.Fatalf("want write error reported, got %v", err)
	}
}
