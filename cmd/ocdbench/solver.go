package main

import (
	"fmt"
	"time"

	"ocd/internal/core"
	"ocd/internal/exact"
	"ocd/internal/experiments"
	"ocd/internal/ilp"
)

// solverBench is the solver section of the bench report: the warm-started
// branch-and-bound over the bounded-variable simplex, run on a pinned
// seeded instance set so the counters are comparable across revisions.
// BnBNodes and SimplexIterations are deterministic (the solver has no
// random choices), so -compare can gate them tightly; Seconds and
// NodesPerSec carry machine noise and are informational.
type solverBench struct {
	Seed      int64 `json:"seed"`
	Instances int   `json:"instances"`
	Vertices  int   `json:"vertices"`
	Tokens    int   `json:"tokens"`
	// ObjectiveSum is the sum of optimal bandwidth objectives across the
	// set — a correctness pin: it must match the baseline exactly.
	ObjectiveSum      int `json:"objective_sum"`
	BnBNodes          int `json:"bnb_nodes"`
	SimplexIterations int `json:"simplex_iterations"`
	WarmStarts        int `json:"warm_starts"`
	// BoundFlips and DualRestorations break the iteration count down
	// further (deterministic; additive fields — baselines predating them
	// read as zero and are simply not gated on them).
	BoundFlips       int     `json:"bound_flips,omitempty"`
	DualRestorations int     `json:"dual_restorations,omitempty"`
	Seconds          float64 `json:"seconds"`
	NodesPerSec      float64 `json:"nodes_per_sec"`
}

// solverBenchSeed pins the instance set; changing it (or the generator in
// internal/experiments) invalidates committed solver baselines.
const solverBenchSeed = 7

// benchSolver solves the §3.4 time-indexed integer program to optimality
// on every instance of the pinned set, validating each extracted schedule,
// and accumulates the branch-and-bound counters. The horizon is the FOCD
// optimum plus one slack step, matching the ILP↔exact cross-check.
func benchSolver(p benchParams) (solverBench, error) {
	out := solverBench{
		Seed:      solverBenchSeed,
		Instances: p.solverInstances,
		Vertices:  p.solverN,
		Tokens:    p.solverM,
	}
	insts := experiments.RandomTinyInstances(solverBenchSeed, p.solverInstances, p.solverN, p.solverM)
	start := time.Now()
	for i, inst := range insts {
		fast, err := exact.SolveFOCD(inst, exact.Options{})
		if err != nil {
			return solverBench{}, fmt.Errorf("solver bench instance %d focd: %w", i, err)
		}
		prog, err := ilp.Build(inst, fast.Makespan()+1)
		if err != nil {
			return solverBench{}, fmt.Errorf("solver bench instance %d build: %w", i, err)
		}
		sched, obj, stats, err := prog.SolveStats(ilp.Options{})
		if err != nil {
			return solverBench{}, fmt.Errorf("solver bench instance %d solve: %w", i, err)
		}
		if err := core.Validate(inst, sched); err != nil {
			return solverBench{}, fmt.Errorf("solver bench instance %d: invalid schedule: %w", i, err)
		}
		out.ObjectiveSum += obj
		out.BnBNodes += stats.Nodes
		out.SimplexIterations += stats.SimplexIterations
		out.WarmStarts += stats.WarmStarts
		out.BoundFlips += stats.BoundFlips
		out.DualRestorations += stats.DualRestorations
	}
	out.Seconds = time.Since(start).Seconds()
	out.NodesPerSec = float64(out.BnBNodes) / out.Seconds
	return out, nil
}
