package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, report benchReport) string {
	t.Helper()
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_base.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchFixture(ns, allocs float64) benchReport {
	return benchReport{
		Schema:   benchSchema,
		Revision: "base",
		Heuristics: []heurBench{
			{Name: "local", Steps: 10, NsPerStep: ns, AllocsPerStep: allocs},
		},
	}
}

func TestCompareBench(t *testing.T) {
	base := writeBaseline(t, benchFixture(1000, 40))
	var out bytes.Buffer

	t.Run("within tolerance passes", func(t *testing.T) {
		if err := compareBench(benchFixture(1040, 41), base, 0.05, &out); err != nil {
			t.Errorf("4%% drift rejected at 5%% tolerance: %v", err)
		}
	})
	t.Run("faster and leaner passes", func(t *testing.T) {
		if err := compareBench(benchFixture(500, 20), base, 0.05, &out); err != nil {
			t.Errorf("improvement rejected: %v", err)
		}
	})
	t.Run("ns regression fails", func(t *testing.T) {
		err := compareBench(benchFixture(1200, 40), base, 0.05, &out)
		if err == nil || !strings.Contains(err.Error(), "ns/step") {
			t.Errorf("20%% ns/step regression accepted: %v", err)
		}
	})
	t.Run("alloc regression fails", func(t *testing.T) {
		err := compareBench(benchFixture(1000, 45), base, 0.05, &out)
		if err == nil || !strings.Contains(err.Error(), "allocs/step") {
			t.Errorf("allocs/step regression accepted: %v", err)
		}
	})
	t.Run("alloc slack absorbs step-count jitter", func(t *testing.T) {
		// 40 -> 42.3 is over 5% relative but inside the +0.5 absolute slack.
		if err := compareBench(benchFixture(1000, 42.3), base, 0.05, &out); err != nil {
			t.Errorf("sub-slack alloc drift rejected: %v", err)
		}
	})
	t.Run("missing heuristic fails", func(t *testing.T) {
		report := benchFixture(1000, 40)
		report.Heuristics[0].Name = "renamed"
		err := compareBench(report, base, 0.05, &out)
		if err == nil || !strings.Contains(err.Error(), "not measured") {
			t.Errorf("dropped heuristic accepted: %v", err)
		}
	})
	t.Run("missing baseline fails", func(t *testing.T) {
		if err := compareBench(benchFixture(1000, 40), "/does/not/exist.json", 0.05, &out); err == nil {
			t.Error("missing baseline accepted")
		}
	})
	t.Run("wrong schema fails", func(t *testing.T) {
		bad := benchFixture(1000, 40)
		bad.Schema = "other/v9"
		path := writeBaseline(t, bad)
		if err := compareBench(benchFixture(1000, 40), path, 0.05, &out); err == nil {
			t.Error("wrong-schema baseline accepted")
		}
	})
}

func TestCompareFlagRequiresBench(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-compare", "x.json"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-bench") {
		t.Error("-compare without -bench accepted")
	}
	if err := run([]string{"-quick", "-tol", "-1"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-tol") {
		t.Error("negative -tol accepted")
	}
}
