// Command ocdbench regenerates the paper's tables and figures. Each -fig
// selects one experiment; -scale trades fidelity for runtime (full mirrors
// the paper's parameters, small is suitable for a laptop minute).
//
//	ocdbench -fig 2            # Figure 2: moves/bandwidth vs graph size (random)
//	ocdbench -fig 3            # Figure 3: same on transit-stub topologies
//	ocdbench -fig 4            # Figure 4: receiver density sweep
//	ocdbench -fig 5            # Figure 5: number-of-files sweep
//	ocdbench -fig 6            # Figure 6: multiple senders
//	ocdbench -fig 1            # Figure 1: certified time/bandwidth tension
//	ocdbench -fig 7            # Figure 7: Theorem 5 reduction validation
//	ocdbench -thm4             # Theorem 4: unbounded competitive ratio
//	ocdbench -oracle           # §4.2 additive-diameter oracle
//	ocdbench -ip               # §3.4 ILP vs branch-and-bound cross-check
//	ocdbench -tradeoff         # §3.4 hybrid objective curve on Figure 1
//	ocdbench -dynamic          # §6 changing network conditions / churn
//	ocdbench -coding           # §6 encoding under loss
//	ocdbench -underlay         # §6 realistic topologies (shared links)
//	ocdbench -delay            # §5.1 knowledge-delay ablation
//	ocdbench -protocol         # §4.1 message-passing vs idealized Local
//	ocdbench -bounds           # heuristics and bounds vs certified optima
//	ocdbench -arch             # §2 tree/forest architectures vs meshes
//	ocdbench -all              # everything
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ocd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ocdbench:", err)
		os.Exit(1)
	}
}

type scaleParams struct {
	sizes      []int
	densityN   int
	thresholds []float64
	filesN     int
	fileCounts []int
	fileTokens int
	tokens     int
	seeds      int
	repeats    int
	decoys     []int
	oracleNs   []int
	dsGraphs   int
	dsN        int
	ipCases    int
}

func params(scale string) (scaleParams, error) {
	switch scale {
	case "full":
		// The paper's parameters: graphs of 20..1000 vertices, 200-token
		// file, 512-token multi-file scenario, 3 repeats.
		return scaleParams{
			sizes:      []int{20, 50, 100, 200, 500, 1000},
			densityN:   200,
			thresholds: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
			filesN:     200,
			fileCounts: []int{1, 2, 4, 8, 16, 32, 64, 128},
			fileTokens: 512,
			tokens:     200,
			seeds:      3,
			repeats:    3,
			decoys:     []int{1, 2, 4, 8, 16, 32, 64, 128, 256},
			oracleNs:   []int{20, 50, 100, 200},
			dsGraphs:   4,
			dsN:        6,
			ipCases:    8,
		}, nil
	case "small":
		return scaleParams{
			sizes:      []int{20, 50, 100},
			densityN:   60,
			thresholds: []float64{0.2, 0.5, 1.0},
			filesN:     60,
			fileCounts: []int{1, 4, 16},
			fileTokens: 64,
			tokens:     50,
			seeds:      2,
			repeats:    2,
			decoys:     []int{1, 4, 16, 64},
			oracleNs:   []int{20, 50},
			dsGraphs:   2,
			dsN:        5,
			ipCases:    4,
		}, nil
	default:
		return scaleParams{}, fmt.Errorf("unknown scale %q (full|small)", scale)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ocdbench", flag.ContinueOnError)
	var (
		fig      = fs.Int("fig", 0, "figure to regenerate (1-7)")
		thm4     = fs.Bool("thm4", false, "run the Theorem 4 experiment")
		oracle   = fs.Bool("oracle", false, "run the §4.2 oracle experiment")
		ip       = fs.Bool("ip", false, "run the ILP vs branch-and-bound cross-check")
		tradeoff = fs.Bool("tradeoff", false, "run the §3.4 hybrid-objective curve")
		dyn      = fs.Bool("dynamic", false, "run the §6 changing-conditions experiment")
		coding   = fs.Bool("coding", false, "run the §6 encoding-under-loss experiment")
		under    = fs.Bool("underlay", false, "run the §6 realistic-topologies experiment")
		delay    = fs.Bool("delay", false, "run the §5.1 knowledge-delay ablation")
		proto    = fs.Bool("protocol", false, "run the §4.1 message-passing protocol comparison")
		bounds   = fs.Bool("bounds", false, "run the heuristic-vs-optimum bounds quality table")
		arch     = fs.Bool("arch", false, "run the §2 tree/forest architecture comparison")
		all      = fs.Bool("all", false, "run every experiment")
		scale    = fs.String("scale", "full", "parameter scale: full | small")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		seed     = fs.Int64("seed", 1, "base random seed")
		bench    = fs.Bool("bench", false, "measure grid throughput and per-step heuristic cost, write BENCH_<rev>.json")
		quick    = fs.Bool("quick", false, "like -bench but at CI-smoke scale")
		out      = fs.String("out", ".", "directory for the BENCH_<rev>.json report")
		rev      = fs.String("rev", "", "revision stamp for the bench report (default: VCS revision)")
		compare  = fs.String("compare", "", "baseline BENCH_*.json to compare the fresh bench report against")
		tol      = fs.Float64("tol", 0.05, "relative regression tolerance for -compare")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare != "" && !*bench && !*quick {
		return fmt.Errorf("-compare needs a fresh report; combine it with -bench or -quick")
	}
	if *tol < 0 {
		return fmt.Errorf("-tol must be non-negative, got %v", *tol)
	}

	p, err := params(*scale)
	if err != nil {
		return err
	}

	emit := func(t *ocd.Table, err error) error {
		if err != nil {
			return err
		}
		// A failed write (closed pipe, full disk) must not pass for a
		// successful table: report it instead of dropping it.
		if *csv {
			_, err = fmt.Fprint(stdout, t.CSV())
		} else {
			_, err = fmt.Fprintln(stdout, t.ASCII())
		}
		if err != nil {
			return fmt.Errorf("writing table: %w", err)
		}
		return nil
	}

	ran := false
	if *bench || *quick {
		ran = true
		report, err := runBench(*quick, *rev, *out, stdout)
		if err != nil {
			return err
		}
		if *compare != "" {
			if err := compareBench(report, *compare, *tol, stdout); err != nil {
				return err
			}
		}
	}
	runFig := func(n int) bool { return *all || *fig == n }

	if runFig(1) {
		ran = true
		if err := emit(ocd.ExperimentFigure1()); err != nil {
			return err
		}
	}
	if runFig(2) {
		ran = true
		if err := emit(ocd.ExperimentGraphSize(false, p.sizes, p.tokens, p.seeds, p.repeats, *seed)); err != nil {
			return err
		}
	}
	if runFig(3) {
		ran = true
		if err := emit(ocd.ExperimentGraphSize(true, p.sizes, p.tokens, p.seeds, p.repeats, *seed)); err != nil {
			return err
		}
	}
	if runFig(4) {
		ran = true
		if err := emit(ocd.ExperimentReceiverDensity(p.densityN, p.thresholds, p.tokens, p.seeds, p.repeats, *seed)); err != nil {
			return err
		}
	}
	if runFig(5) {
		ran = true
		if err := emit(ocd.ExperimentNumFiles(p.filesN, p.fileCounts, p.fileTokens, p.seeds, p.repeats, false, *seed)); err != nil {
			return err
		}
	}
	if runFig(6) {
		ran = true
		if err := emit(ocd.ExperimentNumFiles(p.filesN, p.fileCounts, p.fileTokens, p.seeds, p.repeats, true, *seed)); err != nil {
			return err
		}
	}
	if runFig(7) {
		ran = true
		if err := emit(ocd.ExperimentFigure7(p.dsGraphs, p.dsN, 0.4, *seed)); err != nil {
			return err
		}
	}
	if *thm4 || *all {
		ran = true
		if err := emit(ocd.ExperimentTheorem4(1, p.decoys, 1)); err != nil {
			return err
		}
	}
	if *oracle || *all {
		ran = true
		if err := emit(ocd.ExperimentOracleAdditive(p.oracleNs, p.tokens, *seed)); err != nil {
			return err
		}
	}
	if *ip || *all {
		ran = true
		if err := emit(ocd.ExperimentILPvsBnB(p.ipCases, 4, 2, *seed)); err != nil {
			return err
		}
	}
	if *tradeoff || *all {
		ran = true
		if err := emit(ocd.ExperimentTradeoffCurve(ocd.Figure1Instance())); err != nil {
			return err
		}
	}
	if *dyn || *all {
		ran = true
		if err := emit(ocd.ExperimentDynamicConditions(p.densityN/4, p.tokens/4, *seed)); err != nil {
			return err
		}
	}
	if *coding || *all {
		ran = true
		if err := emit(ocd.ExperimentLossCoding(p.densityN/4, p.tokens/4, 0.3,
			[]float64{1.25, 1.5, 2.0}, *seed)); err != nil {
			return err
		}
	}
	if *under || *all {
		ran = true
		if err := emit(ocd.ExperimentUnderlay(p.densityN, p.densityN/8, p.tokens/4, *seed)); err != nil {
			return err
		}
	}
	if *delay || *all {
		ran = true
		if err := emit(ocd.ExperimentKnowledgeDelay(p.densityN/4, p.tokens/4, 6, *seed)); err != nil {
			return err
		}
	}
	if *proto || *all {
		ran = true
		if err := emit(ocd.ExperimentProtocolComparison(p.oracleNs, p.tokens/2, *seed)); err != nil {
			return err
		}
	}
	if *bounds || *all {
		ran = true
		if err := emit(ocd.ExperimentBoundsQuality(p.ipCases, 4, 2, *seed)); err != nil {
			return err
		}
	}
	if *arch || *all {
		ran = true
		if err := emit(ocd.ExperimentArchitectures(p.densityN/2, p.tokens/2, *seed)); err != nil {
			return err
		}
	}
	if !ran {
		fs.Usage()
		return fmt.Errorf("nothing selected; pass -fig N, -thm4, -oracle, -ip, -bench, -quick, or -all")
	}
	return nil
}
