package main

import (
	"bytes"
	"strings"
	"testing"
)

func solverFixture(iters, nodes, objSum int) solverBench {
	return solverBench{
		Seed: solverBenchSeed, Instances: 8, Vertices: 6, Tokens: 3,
		ObjectiveSum: objSum, BnBNodes: nodes, SimplexIterations: iters,
		Seconds: 0.01, NodesPerSec: float64(nodes) / 0.01,
	}
}

func TestCompareSolver(t *testing.T) {
	base := solverFixture(200, 20, 9)
	var out bytes.Buffer

	t.Run("within tolerance passes", func(t *testing.T) {
		if fails := compareSolver(solverFixture(205, 20, 9), base, "base", 0.05, &out); len(fails) > 0 {
			t.Errorf("small drift rejected: %v", fails)
		}
	})
	t.Run("fewer iterations passes", func(t *testing.T) {
		if fails := compareSolver(solverFixture(50, 10, 9), base, "base", 0.05, &out); len(fails) > 0 {
			t.Errorf("improvement rejected: %v", fails)
		}
	})
	t.Run("iteration blowup fails", func(t *testing.T) {
		fails := compareSolver(solverFixture(400, 20, 9), base, "base", 0.05, &out)
		if len(fails) != 1 || !strings.Contains(fails[0], "simplex iterations") {
			t.Errorf("2x iteration regression accepted: %v", fails)
		}
	})
	t.Run("node blowup fails", func(t *testing.T) {
		fails := compareSolver(solverFixture(200, 60, 9), base, "base", 0.05, &out)
		if len(fails) != 1 || !strings.Contains(fails[0], "nodes") {
			t.Errorf("3x node regression accepted: %v", fails)
		}
	})
	t.Run("objective drift always fails", func(t *testing.T) {
		fails := compareSolver(solverFixture(50, 10, 8), base, "base", 0.05, &out)
		if len(fails) != 1 || !strings.Contains(fails[0], "objective sum") {
			t.Errorf("wrong optimum accepted because it was fast: %v", fails)
		}
	})
	t.Run("pre-section baseline skipped", func(t *testing.T) {
		if fails := compareSolver(solverFixture(200, 20, 9), solverBench{}, "old", 0.05, &out); len(fails) > 0 {
			t.Errorf("legacy baseline not skipped: %v", fails)
		}
	})
	t.Run("different pinned set skipped", func(t *testing.T) {
		other := solverFixture(9999, 999, 48)
		other.Instances, other.Vertices, other.Tokens = 4, 5, 2
		if fails := compareSolver(solverFixture(200, 20, 9), other, "other", 0.05, &out); len(fails) > 0 {
			t.Errorf("mismatched instance set compared anyway: %v", fails)
		}
	})
}

// TestBenchSolverQuick runs the real pinned set end to end: the counters
// must be deterministic across runs and the objective sum is pinned — it
// changes only if the solver stack or the instance generator changes,
// both of which invalidate committed baselines.
func TestBenchSolverQuick(t *testing.T) {
	_, p := benchScale(true)
	first, err := benchSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if first.ObjectiveSum != 48 {
		t.Errorf("pinned set objective sum = %d, want 48", first.ObjectiveSum)
	}
	second, err := benchSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if first.BnBNodes != second.BnBNodes || first.SimplexIterations != second.SimplexIterations ||
		first.ObjectiveSum != second.ObjectiveSum || first.WarmStarts != second.WarmStarts {
		t.Errorf("solver bench not deterministic: %+v vs %+v", first, second)
	}
	if first.SimplexIterations <= 0 || first.BnBNodes <= 0 || first.NodesPerSec <= 0 {
		t.Errorf("solver bench counters not positive: %+v", first)
	}
}
