package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"ocd"
	"ocd/internal/experiments"
	"ocd/internal/telemetry"
	"ocd/internal/topology"
)

// benchReport is the BENCH_<rev>.json schema ("ocd-bench/v1"): a machine-
// readable snapshot of the experiment grid's throughput and the per-step
// cost of every heuristic, recorded per revision so regressions show up as
// a diff against the committed file.
type benchReport struct {
	Schema   string `json:"schema"`
	Revision string `json:"revision"`
	Scale    string `json:"scale"`
	// GoMaxProcs is runtime.GOMAXPROCS at measurement time and NumCPU the
	// machine's logical CPU count — recorded honestly so the parallel-vs-
	// serial speedup figure can be judged against the hardware it ran on.
	GoMaxProcs int         `json:"gomaxprocs"`
	NumCPU     int         `json:"numcpu"`
	Grid       gridBench   `json:"grid"`
	Heuristics []heurBench `json:"heuristics"`
	Solver     solverBench `json:"solver"`
	// Telemetry is the deterministic metric snapshot of the parallel grid
	// run: kernel step-phase counters and runner cell counts. Wall-clock
	// metrics are printed but never recorded in the report — they would
	// make the artifact machine-dependent.
	Telemetry []telemetry.Metric `json:"telemetry,omitempty"`
}

// gridBench times the same (graph × heuristic × repeat) cell grid serially
// and at full parallelism. ParallelMatchesSerial is the determinism check:
// the two tables must be byte-identical.
type gridBench struct {
	Cells                 int     `json:"cells"`
	SerialSeconds         float64 `json:"serial_seconds"`
	ParallelSeconds       float64 `json:"parallel_seconds"`
	CellsPerSec           float64 `json:"cells_per_sec"`
	Speedup               float64 `json:"speedup_vs_serial"`
	ParallelMatchesSerial bool    `json:"parallel_matches_serial"`
}

// heurBench is the per-timestep cost of one heuristic on the reference
// single-file workload.
type heurBench struct {
	Name          string  `json:"name"`
	Steps         int     `json:"steps"`
	NsPerStep     float64 `json:"ns_per_step"`
	AllocsPerStep float64 `json:"allocs_per_step"`
}

const benchSchema = "ocd-bench/v1"

// benchRevision resolves the revision stamped into the report: an explicit
// -rev wins, then the VCS revision embedded by the Go toolchain, then "dev".
func benchRevision(override string) string {
	if override != "" {
		return override
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				if len(s.Value) > 12 {
					return s.Value[:12]
				}
				return s.Value
			}
		}
	}
	return "dev"
}

type benchParams struct {
	sizes           []int
	tokens          int
	graphSeeds      int
	repeats         int
	heurN           int
	heurTokens      int
	heurRuns        int
	solverInstances int
	solverN         int
	solverM         int
}

// The solver set is identical at both scales (it costs well under a
// second): that way the quick CI smoke run compares its solver counters
// directly against the committed full-scale baseline instead of skipping.
func benchScale(quick bool) (string, benchParams) {
	if quick {
		return "quick", benchParams{
			sizes: []int{30, 60}, tokens: 40, graphSeeds: 2, repeats: 2,
			heurN: 60, heurTokens: 40, heurRuns: 3,
			solverInstances: 8, solverN: 6, solverM: 3,
		}
	}
	return "full", benchParams{
		sizes: []int{50, 100}, tokens: 100, graphSeeds: 3, repeats: 3,
		heurN: 100, heurTokens: 100, heurRuns: 5,
		solverInstances: 8, solverN: 6, solverM: 3,
	}
}

// benchGrid runs the Figure 2 sweep once serially and once at GOMAXPROCS
// and checks the outputs are byte-identical — the runner's determinism
// contract, measured rather than assumed. The parallel run records into
// the returned telemetry registry (the serial run stays uninstrumented so
// the attached registry provably does not perturb the output).
func benchGrid(p benchParams) (gridBench, *telemetry.Registry, error) {
	cfg := experiments.SweepConfig{
		Kind:       experiments.RandomGraph,
		Tokens:     p.tokens,
		Caps:       topology.DefaultCaps,
		GraphSeeds: p.graphSeeds,
		Repeats:    p.repeats,
		BaseSeed:   1,
	}
	run := func(parallelism int, tel *telemetry.Registry) (string, float64, error) {
		cfg.Parallelism = parallelism
		cfg.Telemetry = tel
		start := time.Now()
		t, err := experiments.GraphSize(cfg, p.sizes)
		if err != nil {
			return "", 0, err
		}
		return t.CSV(), time.Since(start).Seconds(), nil
	}
	serialCSV, serialSec, err := run(1, nil)
	if err != nil {
		return gridBench{}, nil, fmt.Errorf("serial grid: %w", err)
	}
	reg := telemetry.New()
	parallelCSV, parallelSec, err := run(0, reg)
	if err != nil {
		return gridBench{}, nil, fmt.Errorf("parallel grid: %w", err)
	}
	cells := len(p.sizes) * p.graphSeeds * len(ocd.Heuristics()) * p.repeats
	return gridBench{
		Cells:                 cells,
		SerialSeconds:         serialSec,
		ParallelSeconds:       parallelSec,
		CellsPerSec:           float64(cells) / parallelSec,
		Speedup:               serialSec / parallelSec,
		ParallelMatchesSerial: serialCSV == parallelCSV,
	}, reg, nil
}

// benchHeuristic measures the per-timestep cost of one heuristic: wall
// clock and heap allocations (runtime.MemStats mallocs delta) divided by
// the total simulated steps across the runs. The measurement repeats for a
// few passes and keeps the fastest — the minimum is the standard estimator
// for "cost of the code" under scheduler and GC noise, which single-pass
// numbers here were observed to swing by ±20%. Allocations are effectively
// deterministic, so the same pass serves both metrics.
func benchHeuristic(name string, inst *ocd.Instance, runs int) (heurBench, error) {
	// Warm-up run: pull one-time costs (lazy tables, first-touch growth)
	// out of the measurement.
	res, err := ocd.RunHeuristic(inst, name, ocd.RunOptions{Seed: 1, Prune: true})
	if err != nil {
		return heurBench{}, fmt.Errorf("%s warm-up: %w", name, err)
	}
	steps := res.Steps

	const passes = 3
	best := heurBench{Name: name, Steps: steps}
	for pass := 0; pass < passes; pass++ {
		var before, after runtime.MemStats
		totalSteps := 0
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < runs; i++ {
			res, err := ocd.RunHeuristic(inst, name, ocd.RunOptions{Seed: int64(i + 1), Prune: true})
			if err != nil {
				return heurBench{}, fmt.Errorf("%s run %d: %w", name, i, err)
			}
			totalSteps += res.Steps
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if totalSteps == 0 {
			return heurBench{}, fmt.Errorf("%s: zero steps simulated", name)
		}
		ns := float64(elapsed.Nanoseconds()) / float64(totalSteps)
		if pass == 0 || ns < best.NsPerStep {
			best.NsPerStep = ns
			best.AllocsPerStep = float64(after.Mallocs-before.Mallocs) / float64(totalSteps)
		}
	}
	return best, nil
}

// validateBench re-parses the serialized report and rejects structurally
// broken output, so a malformed BENCH file fails the producing run instead
// of a later consumer.
func validateBench(data []byte) error {
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("bench report is not valid JSON: %w", err)
	}
	switch {
	case r.Schema != benchSchema:
		return fmt.Errorf("bench report schema = %q, want %q", r.Schema, benchSchema)
	case r.Revision == "":
		return errors.New("bench report has no revision")
	case r.Grid.Cells <= 0 || r.Grid.CellsPerSec <= 0 || r.Grid.Speedup <= 0:
		return fmt.Errorf("bench report grid metrics not positive: %+v", r.Grid)
	case !r.Grid.ParallelMatchesSerial:
		return errors.New("bench report: parallel grid output diverged from serial")
	case len(r.Heuristics) == 0:
		return errors.New("bench report has no heuristic entries")
	}
	for _, h := range r.Heuristics {
		if h.Name == "" || h.NsPerStep <= 0 || h.Steps <= 0 || h.AllocsPerStep < 0 {
			return fmt.Errorf("bench report heuristic entry invalid: %+v", h)
		}
	}
	s := r.Solver
	if s.Instances <= 0 || s.ObjectiveSum <= 0 || s.BnBNodes <= 0 ||
		s.SimplexIterations <= 0 || s.Seconds <= 0 || s.NodesPerSec <= 0 {
		return fmt.Errorf("bench report solver metrics not positive: %+v", s)
	}
	var hasKernel, hasRunner bool
	for _, m := range r.Telemetry {
		if !m.IsDeterministic() {
			return fmt.Errorf("bench report telemetry entry %s is %s: only deterministic metrics belong in the artifact", m.Name, m.Class)
		}
		if strings.HasPrefix(m.Name, "kernel.") {
			hasKernel = true
		}
		if strings.HasPrefix(m.Name, "runner.") {
			hasRunner = true
		}
	}
	if !hasKernel || !hasRunner {
		return fmt.Errorf("bench report telemetry lacks kernel.* or runner.* counters: %+v", r.Telemetry)
	}
	return nil
}

// compareBench asserts the fresh report has not regressed against a
// committed baseline BENCH_*.json: per heuristic, ns/step and allocs/step
// must stay within tol of the baseline. Allocations get half an alloc/step
// of absolute slack on top, since step counts (the denominator) may differ
// between revisions. A missing or malformed baseline is an error; an extra
// baseline heuristic the fresh report lacks is too — shrinking coverage
// must not pass as a win.
func compareBench(report benchReport, baselinePath string, tol float64, stdout io.Writer) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading bench baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench baseline is not valid JSON: %w", err)
	}
	if base.Schema != benchSchema {
		return fmt.Errorf("bench baseline schema = %q, want %q", base.Schema, benchSchema)
	}
	fresh := make(map[string]heurBench, len(report.Heuristics))
	for _, h := range report.Heuristics {
		fresh[h.Name] = h
	}
	var failures []string
	for _, b := range base.Heuristics {
		h, ok := fresh[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline %s but not measured", b.Name, base.Revision))
			continue
		}
		nsRatio := h.NsPerStep / b.NsPerStep
		allocRatio := h.AllocsPerStep / b.AllocsPerStep
		fmt.Fprintf(stdout, "compare %s: ns/step %.0f -> %.0f (%+.1f%%), allocs/step %.2f -> %.2f (%+.1f%%)\n",
			b.Name, b.NsPerStep, h.NsPerStep, (nsRatio-1)*100,
			b.AllocsPerStep, h.AllocsPerStep, (allocRatio-1)*100)
		if h.NsPerStep > b.NsPerStep*(1+tol) {
			failures = append(failures, fmt.Sprintf("%s: ns/step %.0f exceeds baseline %.0f by more than %.0f%%",
				b.Name, h.NsPerStep, b.NsPerStep, tol*100))
		}
		if h.AllocsPerStep > b.AllocsPerStep*(1+tol)+0.5 {
			failures = append(failures, fmt.Sprintf("%s: allocs/step %.2f exceeds baseline %.2f by more than %.0f%%",
				b.Name, h.AllocsPerStep, b.AllocsPerStep, tol*100))
		}
	}
	failures = append(failures, compareSolver(report.Solver, base.Solver, base.Revision, tol, stdout)...)
	if len(failures) > 0 {
		return fmt.Errorf("bench regression vs %s:\n  %s", baselinePath, joinLines(failures))
	}
	fmt.Fprintf(stdout, "compare: no regression vs %s (tolerance %.0f%%)\n", base.Revision, tol*100)
	return nil
}

// compareSolver gates the solver section. BnBNodes and SimplexIterations
// are deterministic counters of the branch-and-bound on the pinned
// instance set, so exceeding the baseline by more than tol is a genuine
// algorithmic regression, not machine noise; ObjectiveSum must match
// exactly — a drift there means the solver returned a different "optimum"
// and the build must fail regardless of speed. Baselines written before
// the solver section existed (zero Instances) are skipped with a note, as
// are baselines for a different pinned set (different scale or seed).
func compareSolver(fresh, base solverBench, baseRev string, tol float64, stdout io.Writer) []string {
	if base.Instances == 0 {
		fmt.Fprintf(stdout, "compare solver: baseline %s predates the solver section; skipping\n", baseRev)
		return nil
	}
	if base.Seed != fresh.Seed || base.Instances != fresh.Instances ||
		base.Vertices != fresh.Vertices || base.Tokens != fresh.Tokens {
		fmt.Fprintf(stdout, "compare solver: baseline %s pins a different instance set; skipping\n", baseRev)
		return nil
	}
	fmt.Fprintf(stdout, "compare solver: iterations %d -> %d (%+.1f%%), nodes %d -> %d, objective sum %d -> %d\n",
		base.SimplexIterations, fresh.SimplexIterations,
		(float64(fresh.SimplexIterations)/float64(base.SimplexIterations)-1)*100,
		base.BnBNodes, fresh.BnBNodes, base.ObjectiveSum, fresh.ObjectiveSum)
	var failures []string
	if fresh.ObjectiveSum != base.ObjectiveSum {
		failures = append(failures, fmt.Sprintf(
			"solver: objective sum %d differs from baseline %d — optimality or determinism broke",
			fresh.ObjectiveSum, base.ObjectiveSum))
	}
	if float64(fresh.SimplexIterations) > float64(base.SimplexIterations)*(1+tol) {
		failures = append(failures, fmt.Sprintf(
			"solver: simplex iterations %d exceed baseline %d by more than %.0f%%",
			fresh.SimplexIterations, base.SimplexIterations, tol*100))
	}
	if float64(fresh.BnBNodes) > float64(base.BnBNodes)*(1+tol) {
		failures = append(failures, fmt.Sprintf(
			"solver: branch-and-bound nodes %d exceed baseline %d by more than %.0f%%",
			fresh.BnBNodes, base.BnBNodes, tol*100))
	}
	return failures
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

// runBench produces BENCH_<rev>.json in outDir and prints a one-line
// summary per section. The report is validated before it is written; an
// invalid report is an error, not an artifact. The written report is
// returned so -compare can check it against a baseline.
func runBench(quick bool, rev, outDir string, stdout io.Writer) (benchReport, error) {
	scale, p := benchScale(quick)
	report := benchReport{
		Schema:     benchSchema,
		Revision:   benchRevision(rev),
		Scale:      scale,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	grid, gridTel, err := benchGrid(p)
	if err != nil {
		return benchReport{}, err
	}
	report.Grid = grid
	report.Telemetry = gridTel.DeterministicSnapshot()
	fmt.Fprintf(stdout, "grid: %d cells, %.1f cells/sec, %.2fx vs serial, parallel==serial: %v\n",
		grid.Cells, grid.CellsPerSec, grid.Speedup, grid.ParallelMatchesSerial)

	g, err := ocd.RandomTopology(p.heurN, ocd.DefaultCaps, 1)
	if err != nil {
		return benchReport{}, err
	}
	inst := ocd.SingleFile(g, p.heurTokens)
	for _, name := range ocd.Heuristics() {
		h, err := benchHeuristic(name, inst, p.heurRuns)
		if err != nil {
			return benchReport{}, err
		}
		report.Heuristics = append(report.Heuristics, h)
		fmt.Fprintf(stdout, "%s: %.0f ns/step, %.1f allocs/step (%d steps)\n",
			h.Name, h.NsPerStep, h.AllocsPerStep, h.Steps)
	}

	solver, err := benchSolver(p)
	if err != nil {
		return benchReport{}, err
	}
	report.Solver = solver
	fmt.Fprintf(stdout, "solver: %d instances, %d nodes, %d simplex iterations, %d warm starts, %.1f nodes/sec, objective sum %d\n",
		solver.Instances, solver.BnBNodes, solver.SimplexIterations,
		solver.WarmStarts, solver.NodesPerSec, solver.ObjectiveSum)

	fmt.Fprintf(stdout, "telemetry (parallel grid run):\n%s", gridTel.Summary())

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return benchReport{}, err
	}
	data = append(data, '\n')
	if err := validateBench(data); err != nil {
		return benchReport{}, err
	}
	path := filepath.Join(outDir, "BENCH_"+report.Revision+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return benchReport{}, fmt.Errorf("writing bench report: %w", err)
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return report, nil
}
