package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ocd"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestRunSingleHeuristic(t *testing.T) {
	out := runOK(t, "-n", "15", "-tokens", "8", "-heuristic", "local", "-seed", "3")
	if !strings.Contains(out, "local") || !strings.Contains(out, "completed=true") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunAllHeuristics(t *testing.T) {
	out := runOK(t, "-n", "12", "-tokens", "6", "-heuristic", "all")
	for _, name := range []string{"roundrobin", "random", "local", "bandwidth", "global"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing %s in output:\n%s", name, out)
		}
	}
}

func TestRunExtensionStrategies(t *testing.T) {
	for _, h := range []string{"tree", "forest-2", "protocol-local", "local-delayed-1"} {
		out := runOK(t, "-n", "12", "-tokens", "6", "-heuristic", h, "-patience", "10")
		if !strings.Contains(out, "completed=true") {
			t.Errorf("%s did not complete:\n%s", h, out)
		}
	}
}

func TestRunWorkloadsAndTopologies(t *testing.T) {
	for _, args := range [][]string{
		{"-topology", "transit-stub", "-n", "20", "-tokens", "6"},
		{"-workload", "density", "-n", "15", "-tokens", "6", "-density", "0.4"},
		{"-workload", "multifile", "-n", "15", "-tokens", "8", "-files", "4"},
		{"-workload", "multisender", "-n", "15", "-tokens", "8", "-files", "4"},
		{"-n", "12", "-tokens", "6", "-oracle"},
		{"-n", "12", "-tokens", "6", "-loss", "0.2"},
		{"-n", "12", "-tokens", "6", "-timeline"},
	} {
		if out := runOK(t, args...); !strings.Contains(out, "bounds:") {
			t.Errorf("args %v: output malformed:\n%s", args, out)
		}
	}
}

func TestRunDumpAndLoadInstance(t *testing.T) {
	dir := t.TempDir()
	instPath := filepath.Join(dir, "inst.json")
	schedPath := filepath.Join(dir, "sched.json")
	runOK(t, "-n", "12", "-tokens", "5", "-heuristic", "local",
		"-dump-instance", instPath, "-dump-schedule", schedPath)
	for _, p := range []string{instPath, schedPath} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("dump %s missing: %v", p, err)
		}
	}
	// Reload the dumped instance and run on it.
	out := runOK(t, "-instance", instPath, "-heuristic", "global")
	if !strings.Contains(out, "completed=true") {
		t.Errorf("loaded instance run failed:\n%s", out)
	}
}

func TestRunStepTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	out := runOK(t, "-n", "15", "-tokens", "8", "-heuristic", "local",
		"-loss", "0.1", "-steptrace", tracePath)
	if !strings.Contains(out, "local") {
		t.Errorf("output:\n%s", out)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatalf("step trace missing: %v", err)
	}
	defer f.Close()
	recs, err := ocd.DecodeStepTraceJSONL(f)
	if err != nil {
		t.Fatalf("step trace does not round-trip: %v", err)
	}
	if len(recs) == 0 {
		t.Error("step trace is empty")
	}
	// The trace must cover the whole run: total delivered moves match the
	// reported bandwidth column only loosely (losses), so just check the
	// counters are coherent.
	for _, rec := range recs {
		if rec.Moves < 0 || rec.ArcsUsed > rec.Moves+rec.Losses {
			t.Errorf("incoherent record: %+v", rec)
		}
	}
}

func TestRunStepTraceRejectsOracle(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-n", "10", "-tokens", "4", "-oracle", "-steptrace", "t.jsonl"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-oracle") {
		t.Errorf("run accepted -steptrace with -oracle: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-topology", "nope"},
		{"-workload", "nope"},
		{"-heuristic", "nope", "-n", "10", "-tokens", "4"},
		{"-instance", "/does/not/exist.json"},
		{"-workload", "multifile", "-n", "10", "-tokens", "7", "-files", "3"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestSpecModeList(t *testing.T) {
	out := runOK(t, "-list")
	for _, want := range []string{"graph-size", "figure1", "-param", "facade: ocd.Experiment"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in registry listing:\n%s", want, out)
		}
	}
}

func TestSpecModeExperiment(t *testing.T) {
	out := runOK(t, "-experiment", "theorem4", "-param", "decoys=1,4")
	if !strings.Contains(out, "Theorem 4") || !strings.Contains(out, "decoys") {
		t.Errorf("output:\n%s", out)
	}
}

func TestSpecModeSpecFile(t *testing.T) {
	specPath := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(specPath,
		[]byte(`[{"experiment":"figure1"},{"experiment":"theorem4","params":{"decoys":"1"}}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "-spec", specPath)
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "Theorem 4") {
		t.Errorf("spec file output:\n%s", out)
	}
}

func TestSpecModeErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-experiment", "nope"},
		{"-param", "n=12"},
		{"-experiment", "theorem4", "-param", "decoys=abc"},
		{"-experiment", "theorem4", "-spec", "x.json"},
		{"-spec", "/does/not/exist.json"},
		{"-list", "-experiment", "figure1"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-n", "0"},
		{"-n", "-5"},
		{"-tokens", "0"},
		{"-loss", "-0.1"},
		{"-loss", "1.5"},
		{"-density", "2"},
		{"-patience", "-1"},
		{"-max-steps", "-1"},
		{"-files", "0"},
	}
	for _, args := range bad {
		var out bytes.Buffer
		err := run(args, &out)
		if err == nil {
			t.Errorf("run(%v) accepted out-of-range flags", args)
			continue
		}
		if !strings.Contains(err.Error(), "must be") {
			t.Errorf("run(%v): unclear error %q", args, err)
		}
	}
	// The validated boundary values stay accepted.
	runOK(t, "-n", "10", "-tokens", "4", "-loss", "0", "-patience", "0")
	runOK(t, "-n", "10", "-tokens", "4", "-loss", "1", "-patience", "5", "-max-steps", "30")
}
