// Command ocdsim runs one of the distribution strategies on a generated or
// loaded topology and workload, printing makespan ("moves" in the paper's
// §5 terminology), bandwidth, pruned bandwidth, and the §5.1 lower bounds.
//
// The binary also speaks the declarative registry: -list prints every
// registered experiment with its parameter schema, -experiment <name> runs
// one with -param name=value overrides, and -spec file.json replays a JSON
// sweep file.
//
// Examples:
//
//	ocdsim -topology transit-stub -n 200 -tokens 200 -heuristic local -seed 7
//	ocdsim -instance saved.json -heuristic all
//	ocdsim -n 50 -heuristic tree -dump-schedule out.json
//	ocdsim -list
//	ocdsim -experiment graph-size -param sizes=25,50 -param tokens=64
//	ocdsim -spec paper-figures.json -jsonl rows.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ocd"
	"ocd/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ocdsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ocdsim", flag.ContinueOnError)
	var (
		topo      = fs.String("topology", "random", "topology: random | transit-stub")
		n         = fs.Int("n", 100, "number of vertices")
		tokens    = fs.Int("tokens", 200, "number of tokens in the file")
		heuristic = fs.String("heuristic", "local", "strategy: roundrobin | random | local | bandwidth | global | tree | forest-K | protocol-local | local-delayed-K | all")
		work      = fs.String("workload", "singlefile", "workload: singlefile | density | multifile | multisender")
		density   = fs.Float64("density", 0.5, "receiver density threshold (density workload)")
		files     = fs.Int("files", 4, "number of files (multifile workloads)")
		maxSteps  = fs.Int("max-steps", 0, "timestep limit (0 = Theorem 1 horizon)")
		oracle    = fs.Bool("oracle", false, "wrap the heuristic in the §4.2 propagate-then-plan oracle")
		loss      = fs.Float64("loss", 0, "per-move loss probability (§6 lossy channels)")
		patience  = fs.Int("patience", 10, "idle turns tolerated before declaring a stall")
		instPath  = fs.String("instance", "", "load the instance from this JSON file instead of generating one")
		dumpInst  = fs.String("dump-instance", "", "write the instance as JSON to this file")
		dumpSched = fs.String("dump-schedule", "", "write the last schedule as JSON to this file")
		steptrace = fs.String("steptrace", "", "write the last run's per-step trace as JSONL to this file")
		timeline  = fs.Bool("timeline", false, "print the last schedule as a per-step timeline")
	)
	harness := cliutil.AddHarness(fs)
	spec := cliutil.AddSpecMode(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := harness.Validate(); err != nil {
		return err
	}
	if err := harness.Start(); err != nil {
		return err
	}
	// Finish carries the telemetry/profile write errors; it must reach the
	// exit code even when the run itself failed first.
	err := runModes(fs, stdout, harness, spec, classicFlags{
		topo: *topo, n: *n, tokens: *tokens, heuristic: *heuristic, work: *work,
		density: *density, files: *files, maxSteps: *maxSteps, oracle: *oracle,
		loss: *loss, patience: *patience, instPath: *instPath, dumpInst: *dumpInst,
		dumpSched: *dumpSched, steptrace: *steptrace, timeline: *timeline,
	})
	if ferr := harness.Finish(); ferr != nil && err == nil {
		err = ferr
	}
	return err
}

// classicFlags bundles the classic (non-spec) mode's parsed flags.
type classicFlags struct {
	topo, work, heuristic, instPath, dumpInst, dumpSched, steptrace string
	n, tokens, files, maxSteps, patience                            int
	density, loss                                                   float64
	oracle, timeline                                                bool
}

func runModes(fs *flag.FlagSet, stdout io.Writer, harness *cliutil.Harness, spec *cliutil.SpecMode, cf classicFlags) error {
	if spec.Active() {
		return spec.Execute(fs, stdout, false, harness)
	}
	return runClassic(stdout, harness, cf)
}

func runClassic(stdout io.Writer, harness *cliutil.Harness, cf classicFlags) error {
	topo, n, tokens, heuristic := &cf.topo, &cf.n, &cf.tokens, &cf.heuristic
	work, density, files, maxSteps := &cf.work, &cf.density, &cf.files, &cf.maxSteps
	oracle, loss, patience := &cf.oracle, &cf.loss, &cf.patience
	instPath, dumpInst, dumpSched := &cf.instPath, &cf.dumpInst, &cf.dumpSched
	steptrace, timeline := &cf.steptrace, &cf.timeline
	seed := &harness.Seed
	if err := validateFlags(*n, *tokens, *loss, *density, *patience, *maxSteps, *files); err != nil {
		return err
	}
	if *steptrace != "" && *oracle {
		return fmt.Errorf("-steptrace cannot be combined with -oracle")
	}

	inst, err := buildInstance(*instPath, *topo, *work, *n, *tokens, *density, *files, *seed)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "graph: n=%d arcs=%d tokens=%d workload=%s\n",
		inst.N(), inst.G.NumArcs(), inst.NumTokens, *work)
	fmt.Fprintf(stdout, "bounds: moves(timesteps) >= %d, bandwidth >= %d\n",
		ocd.MakespanLowerBound(inst), ocd.BandwidthLowerBound(inst))

	if *dumpInst != "" {
		if err := writeJSON(*dumpInst, func(w io.Writer) error {
			return ocd.EncodeInstanceJSON(w, inst)
		}); err != nil {
			return err
		}
	}

	names := []string{*heuristic}
	if *heuristic == "all" {
		names = ocd.Heuristics()
	}
	var last *ocd.Schedule
	var lastTrace *ocd.StepCollector
	for _, name := range names {
		var res *ocd.RunResult
		if *oracle {
			res, err = ocd.RunOracle(inst, name, *seed)
		} else {
			opts := ocd.RunOptions{
				MaxSteps: *maxSteps, Seed: *seed, Prune: *loss == 0, LossRate: *loss,
				IdlePatience: *patience,
			}
			if *steptrace != "" {
				// The kernel has one Observer seat; the explicit step trace
				// wins over telemetry's step-phase counters.
				col := ocd.NewStepCollector(inst)
				opts.Observer = col
				lastTrace = col
			} else {
				opts.Observer = ocd.NewKernelObserver(harness.Registry(), "sim").Observer()
			}
			res, err = ocd.RunHeuristic(inst, name, opts)
		}
		if err != nil {
			return fmt.Errorf("heuristic %s: %w", name, err)
		}
		if *loss == 0 {
			if verr := ocd.Validate(inst, res.Schedule); verr != nil {
				return fmt.Errorf("heuristic %s produced invalid schedule: %w", name, verr)
			}
		}
		fmt.Fprintf(stdout, "%-14s moves=%-5d bandwidth=%-8d pruned=%-8d lost=%-6d completed=%v\n",
			res.Strategy, res.Steps, res.Moves, res.PrunedMoves, res.Lost, res.Completed)
		last = res.Schedule
	}
	if *timeline && last != nil {
		fmt.Fprint(stdout, ocd.RenderTimeline(inst, last, 8))
	}
	if *dumpSched != "" && last != nil {
		if err := writeJSON(*dumpSched, func(w io.Writer) error {
			return ocd.EncodeScheduleJSON(w, last)
		}); err != nil {
			return err
		}
	}
	if *steptrace != "" && lastTrace != nil {
		if err := writeJSON(*steptrace, func(w io.Writer) error {
			return ocd.EncodeStepTraceJSONL(w, lastTrace.Records)
		}); err != nil {
			return err
		}
	}
	return nil
}

// validateFlags rejects out-of-range parameters up front with a clear
// message instead of letting them wander into generators and the engine as
// undefined behavior (a negative patience, for example, would make every
// idle step a stall).
func validateFlags(n, tokens int, loss, density float64, patience, maxSteps, files int) error {
	switch {
	case n <= 0:
		return fmt.Errorf("-n must be positive, got %d", n)
	case tokens <= 0:
		return fmt.Errorf("-tokens must be positive, got %d", tokens)
	case loss < 0 || loss > 1:
		return fmt.Errorf("-loss must be in [0,1], got %v", loss)
	case density < 0 || density > 1:
		return fmt.Errorf("-density must be in [0,1], got %v", density)
	case patience < 0:
		return fmt.Errorf("-patience must be non-negative, got %d", patience)
	case maxSteps < 0:
		return fmt.Errorf("-max-steps must be non-negative, got %d", maxSteps)
	case files <= 0:
		return fmt.Errorf("-files must be positive, got %d", files)
	}
	return nil
}

// buildInstance loads or generates the problem instance.
func buildInstance(instPath, topo, work string, n, tokens int, density float64, files int, seed int64) (*ocd.Instance, error) {
	if instPath != "" {
		f, err := os.Open(instPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ocd.DecodeInstanceJSON(f)
	}

	var g *ocd.Graph
	var err error
	switch topo {
	case "random":
		g, err = ocd.RandomTopology(n, ocd.DefaultCaps, seed)
	case "transit-stub":
		g, err = ocd.TransitStubTopology(n, ocd.DefaultCaps, seed)
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
	if err != nil {
		return nil, err
	}

	switch work {
	case "singlefile":
		return ocd.SingleFile(g, tokens), nil
	case "density":
		return ocd.ReceiverDensity(g, tokens, density, seed+1), nil
	case "multifile":
		return ocd.MultiFile(g, tokens, files)
	case "multisender":
		return ocd.MultiSender(g, tokens, files, seed+1)
	default:
		return nil, fmt.Errorf("unknown workload %q", work)
	}
}

// writeJSON creates path and streams enc into it. The close error is
// checked — it is where buffered write failures surface, and losing it
// would let a truncated dump exit zero.
func writeJSON(path string, enc func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := enc(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
