// Package cleanmod contains no analyzer violations; the driver test
// asserts go vet exits zero here.
package cleanmod

import "sort"

// SortedKeys is the sanctioned sorted-iteration pattern.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
