// Package badmod seeds one maporder violation so the ocdlint driver
// test can assert a nonzero go vet exit status.
package badmod

import "fmt"

// Dump leaks map iteration order to stdout.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
