// Package det seeds a detrand violation that fires only when the driver
// is invoked with -detrand.packages=badmod/det, proving per-analyzer
// flags reach the vettool through go vet.
package det

import "time"

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }
