// Command ocdlint is the repository's determinism vettool: a
// unitchecker driver bundling the custom static analyzers that keep
// every simulator run a pure function of its seed.
//
// It is meant to be invoked through go vet, which feeds it one
// compilation unit at a time:
//
//	go build -o /tmp/ocdlint ./cmd/ocdlint
//	go vet -vettool=/tmp/ocdlint ./...
//
// Analyzer documentation (including per-analyzer flags such as
// -detrand.packages and -checkederr.funcs) is available via:
//
//	/tmp/ocdlint help
//	/tmp/ocdlint help maporder
//
// The bundled analyzers are detrand (no wall clock or global PRNG in
// deterministic packages), maporder (no map-iteration order reaching
// ordering-sensitive sinks without a justified //ocd:orderinvariant
// directive), checkederr (validation errors must be consumed),
// scratchalias (no reference to a reusable scratch buffer may escape the
// call that filled it), obspure (Observer hooks are read-only on
// *sim.State; StepInterceptor mutation is sanctioned-methods-only and
// PreStep-only), and prngshare (PRNG streams never cross goroutines or
// runner cells).
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"ocd/internal/analysis/checkederr"
	"ocd/internal/analysis/detrand"
	"ocd/internal/analysis/maporder"
	"ocd/internal/analysis/obspure"
	"ocd/internal/analysis/prngshare"
	"ocd/internal/analysis/scratchalias"
)

func main() {
	unitchecker.Main(
		detrand.Analyzer,
		maporder.Analyzer,
		checkederr.Analyzer,
		scratchalias.Analyzer,
		obspure.Analyzer,
		prngshare.Analyzer,
	)
}
