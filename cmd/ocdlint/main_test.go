package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the vettool once per test binary into a temp dir.
func buildLint(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go command not available")
	}
	bin := filepath.Join(t.TempDir(), "ocdlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building ocdlint: %v\n%s", err, out)
	}
	return bin
}

// vet runs `go vet -vettool=bin <extra> ./...` inside dir.
func vet(t *testing.T, bin, dir string, extra ...string) (string, error) {
	t.Helper()
	args := append([]string{"vet", "-vettool=" + bin}, extra...)
	args = append(args, "./...")
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

func TestRegistersAllAnalyzers(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "help")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ocdlint help: %v\n%s", err, out)
	}
	for _, name := range []string{"detrand", "maporder", "checkederr", "scratchalias", "obspure", "prngshare"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("ocdlint help does not list analyzer %s:\n%s", name, out)
		}
	}
}

func TestVetFailsOnSeededViolation(t *testing.T) {
	bin := buildLint(t)
	out, err := vet(t, bin, "testdata/badmod")
	if err == nil {
		t.Fatalf("go vet succeeded on badmod; want nonzero exit\n%s", out)
	}
	if !strings.Contains(out, "ordering-sensitive sink") {
		t.Errorf("missing maporder diagnostic in output:\n%s", out)
	}
	if strings.Contains(out, "time.Now") {
		t.Errorf("detrand fired without -detrand.packages; badmod/det is not in the default set:\n%s", out)
	}
}

func TestVetAnalyzerFlagsReachDriver(t *testing.T) {
	bin := buildLint(t)
	out, err := vet(t, bin, "testdata/badmod", "-detrand.packages=badmod/det")
	if err == nil {
		t.Fatalf("go vet succeeded; want nonzero exit\n%s", out)
	}
	if !strings.Contains(out, "time.Now") {
		t.Errorf("missing detrand diagnostic for badmod/det:\n%s", out)
	}
}

func TestVetPassesOnCleanModule(t *testing.T) {
	bin := buildLint(t)
	out, err := vet(t, bin, "testdata/cleanmod")
	if err != nil {
		t.Fatalf("go vet failed on cleanmod: %v\n%s", err, out)
	}
}

// TestRepoIsClean runs the vettool over this repository itself: the
// acceptance criterion that the tree carries no unexcused
// nondeterminism. Skipped in -short mode because it re-typechecks every
// package.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide vet is not a smoke test")
	}
	bin := buildLint(t)
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, statErr := os.Stat(filepath.Join(root, "go.mod")); statErr != nil {
		t.Fatalf("cannot locate module root: %v", statErr)
	}
	out, err := vet(t, bin, root)
	if err != nil {
		t.Fatalf("go vet -vettool=ocdlint ./... is not clean: %v\n%s", err, out)
	}
}
