// Multifile reproduces the paper's §5.3 subdivision narrative at laptop
// scale: a fixed token mass is split into more and more files wanted by
// disjoint receiver groups. Flooding heuristics keep paying full price;
// only the bandwidth heuristic's consumption tracks the shrinking demand.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"ocd"
)

func main() {
	const (
		vertices = 80
		tokens   = 128
		seed     = 9
	)
	g, err := ocd.RandomTopology(vertices, ocd.DefaultCaps, seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("random overlay: %d vertices, %d arcs\n", g.N(), g.NumArcs())
	fmt.Printf("%d tokens at a single source, subdivided into 1..16 files\n\n", tokens)

	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "files\theuristic\ttimesteps\tbandwidth\tbw-lower-bound\t")
	for _, files := range []int{1, 2, 4, 8, 16} {
		inst, err := ocd.MultiFile(g, tokens, files)
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range []string{"local", "bandwidth"} {
			res, err := ocd.RunHeuristic(inst, name, ocd.RunOptions{Seed: seed, Prune: true})
			if err != nil {
				log.Fatalf("files=%d %s: %v", files, name, err)
			}
			fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t\n",
				files, name, res.Steps, res.Moves, ocd.BandwidthLowerBound(inst))
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nExpected shape (paper §5.3, Figures 5 and 6): the flooding")
	fmt.Println("heuristic's bandwidth stays roughly flat as files shrink, while the")
	fmt.Println("bandwidth heuristic tracks the falling lower bound.")
}
