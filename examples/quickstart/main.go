// Quickstart: build a small overlay, distribute one file with the Local
// (rarest-random) heuristic, and print the resulting schedule.
package main

import (
	"fmt"
	"log"

	"ocd"
)

func main() {
	// An 8-vertex overlay: a ring with two chords, capacity 2 per arc.
	g := ocd.NewGraph(8)
	for i := 0; i < 8; i++ {
		if err := g.AddEdge(i, (i+1)%8, 2); err != nil {
			log.Fatal(err)
		}
	}
	for _, chord := range [][2]int{{0, 4}, {2, 6}} {
		if err := g.AddEdge(chord[0], chord[1], 2); err != nil {
			log.Fatal(err)
		}
	}

	// Vertex 0 has a 6-token file; everyone else wants it.
	inst := ocd.SingleFile(g, 6)

	fmt.Printf("graph: %d vertices, %d arcs, diameter %d\n",
		g.N(), g.NumArcs(), g.Diameter())
	fmt.Printf("lower bounds: >= %d timesteps, >= %d token transfers\n\n",
		ocd.MakespanLowerBound(inst), ocd.BandwidthLowerBound(inst))

	res, err := ocd.RunHeuristic(inst, "local", ocd.RunOptions{Seed: 7, Prune: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := ocd.Validate(inst, res.Schedule); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("local heuristic: %d timesteps, %d transfers (%d after pruning)\n\n",
		res.Steps, res.Moves, res.PrunedMoves)
	fmt.Print(ocd.RenderTimeline(inst, res.Schedule, 8))
}
