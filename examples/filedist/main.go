// Filedist compares all five paper heuristics on the paper's §5.2
// workload: a single source distributing a file to every vertex of a
// transit-stub network (the Figure 3 scenario at laptop scale).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"ocd"
)

func main() {
	const (
		vertices = 120
		tokens   = 100
		seed     = 42
	)
	g, err := ocd.TransitStubTopology(vertices, ocd.DefaultCaps, seed)
	if err != nil {
		log.Fatal(err)
	}
	inst := ocd.SingleFile(g, tokens)

	fmt.Printf("transit-stub overlay: %d vertices, %d arcs, diameter %d\n",
		g.N(), g.NumArcs(), g.Diameter())
	fmt.Printf("single source, %d-token file, every vertex is a receiver\n", tokens)
	fmt.Printf("lower bounds: %d timesteps, %d transfers\n\n",
		ocd.MakespanLowerBound(inst), ocd.BandwidthLowerBound(inst))

	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "heuristic\ttimesteps\tbandwidth\tpruned\t")
	for _, name := range ocd.Heuristics() {
		res, err := ocd.RunHeuristic(inst, name, ocd.RunOptions{Seed: seed, Prune: true})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := ocd.Validate(inst, res.Schedule); err != nil {
			log.Fatalf("%s produced an invalid schedule: %v", name, err)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t\n", name, res.Steps, res.Moves, res.PrunedMoves)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nThe paper's qualitative claims to look for (§5.2):")
	fmt.Println(" - round robin completes but needs far more turns and bandwidth")
	fmt.Println(" - random stays within a constant factor of the smarter heuristics")
	fmt.Println(" - when everyone wants everything, flooding wastes no pruned bandwidth")
}
