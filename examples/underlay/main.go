// Underlay demonstrates the paper's §6 "Realistic topologies" open
// problem: overlay links are paths over shared physical links, so the
// overlay-only capacity model — the one the paper (and most overlay
// systems) analyzes — is optimistic.
package main

import (
	"fmt"
	"log"

	"ocd"
)

func main() {
	const (
		physVertices = 120
		hosts        = 16
		tokens       = 48
		seed         = 11
	)
	fmt.Printf("physical transit-stub network of ~%d vertices; %d overlay hosts;\n",
		physVertices, hosts)
	fmt.Printf("each overlay link rides the shortest physical path\n\n")

	table, err := ocd.ExperimentUnderlay(physVertices, hosts, tokens, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table.ASCII())

	fmt.Println("The slowdown column is underlay-constrained turns over overlay-only")
	fmt.Println("turns. Oversubscribed physical links (the sharing factor in the")
	fmt.Println("title) make logical capacities dependent — exactly the modelling gap")
	fmt.Println("§6 calls out. Flooding heuristics suffer most: every duplicate")
	fmt.Println("delivery now burns shared wire.")
}
