// Dynamic demonstrates the paper's §6 "Changing network conditions" open
// problem: the same file distribution run under static capacities, cross
// traffic, link failures, node churn, and a possession-aware adversary.
package main

import (
	"fmt"
	"log"

	"ocd"
)

func main() {
	const (
		vertices = 40
		tokens   = 32
		seed     = 21
	)
	table, err := ocd.ExperimentDynamicConditions(vertices, tokens, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table.ASCII())

	fmt.Println("Reading the table: \"moves\" are turns (the paper's §5 usage);")
	fmt.Println("every condition slows distribution down relative to the static row,")
	fmt.Println("and the reactive heuristics route around failures and churn because")
	fmt.Println("they re-plan from current possession every turn.")
}
