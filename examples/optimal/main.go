// Optimal demonstrates the exact solvers on the paper's Figure 1 gadget:
// the minimum-time and minimum-bandwidth schedules genuinely conflict, and
// the §3.4 time-indexed integer program certifies both optima.
package main

import (
	"fmt"
	"log"

	"ocd"
)

func main() {
	inst := ocd.Figure1Instance()
	fmt.Printf("Figure 1 gadget: %d vertices, %d arcs, 1 token, 4 receivers\n\n",
		inst.N(), inst.G.NumArcs())

	fast, err := ocd.SolveFOCD(inst, ocd.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fastCheap, err := ocd.SolveEOCD(inst, fast.Makespan(), ocd.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimum time:      %d timesteps, best possible bandwidth %d\n",
		fast.Makespan(), fastCheap.Moves())

	cheap, err := ocd.SolveEOCD(inst, 0, ocd.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimum bandwidth: %d moves, needs %d timesteps\n\n",
		cheap.Moves(), cheap.Makespan())

	fmt.Println("minimum-bandwidth schedule (the relay chain):")
	for i, step := range cheap.Steps {
		fmt.Printf("  step %d:", i+1)
		for _, mv := range step {
			fmt.Printf(" %v", mv)
		}
		fmt.Println()
	}

	fmt.Println("\ncross-checking with the §3.4 time-indexed integer program:")
	for _, tau := range []int{fast.Makespan(), cheap.Makespan()} {
		sched, obj, err := ocd.SolveILP(inst, tau)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ILP at tau=%d: bandwidth %d in %d timesteps\n",
			tau, obj, sched.Makespan())
	}
}
