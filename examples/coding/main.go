// Coding demonstrates the paper's §6 "Encoding" open problem: under lossy
// channels, expanding each file into n coded tokens of which any k suffice
// lets knowledge-free senders finish without chasing specific lost tokens.
package main

import (
	"fmt"
	"log"

	"ocd"
)

func main() {
	// Coding matters in the regime where completion is gated by *which*
	// tokens survive loss rather than by raw capacity: a small overlay,
	// heavy loss, and a knowledge-free sender chasing its token cycle.
	const (
		vertices = 12
		tokens   = 32
		loss     = 0.4
		seed     = 5
	)
	fmt.Printf("single-source distribution of %d tokens over %d vertices, %.0f%% per-move loss\n\n",
		tokens, vertices, loss*100)

	table, err := ocd.ExperimentLossCoding(vertices, tokens, loss,
		[]float64{1.25, 1.5, 2.0}, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table.ASCII())

	fmt.Println("The \"overhead\" column is n/k, the bandwidth price of redundancy;")
	fmt.Println("moderate redundancy beats both the uncoded scheme (which stalls on")
	fmt.Println("specific lost tokens) and heavy redundancy (which floods a larger")
	fmt.Println("token universe for no additional benefit).")
}
